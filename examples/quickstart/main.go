// Quickstart: build an (M,B,ω)-AEM machine, sort data with the paper's
// mergesort, and compare the measured cost with the paper's bounds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// A machine with 1024 items of fast symmetric memory, blocks of 32
	// items, and writes 16× as expensive as reads — the regime of
	// phase-change memory and other NVM technologies that motivate the
	// model.
	cfg := core.Config{M: 1024, B: 32, Omega: 16}
	ma := core.NewMachine(cfg)

	// The input lives in external memory at time zero (free), like any EM
	// computation.
	const n = 1 << 16
	input := workload.Keys(workload.NewRNG(42), workload.Random, n)
	vec := core.Load(ma, input)

	// Sort with the Section 3 mergesort: O(ω·n·log_ωm n) reads but only
	// O(n·log_ωm n) writes — writes are what asymmetric memory makes
	// precious.
	sorted := core.Sort(ma, vec)

	st := ma.Stats()
	fmt.Printf("sorted %d items on a (M=%d, B=%d, ω=%d)-AEM\n", sorted.Len(), cfg.M, cfg.B, cfg.Omega)
	fmt.Printf("  reads  %8d\n", st.Reads)
	fmt.Printf("  writes %8d   (%.1f%% of reads — the ω asymmetry at work)\n",
		st.Writes, 100*float64(st.Writes)/float64(st.Reads))
	fmt.Printf("  cost Q %8d   (= reads + ω·writes)\n", ma.Cost())

	lb := core.SortingLowerBound(bounds.Params{N: n, Cfg: cfg})
	fmt.Printf("  Theorem 4.5 lower bound: %.0f   measured/LB = %.2f\n",
		lb, float64(ma.Cost())/lb)
}
