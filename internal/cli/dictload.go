package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/aem"
	"repro/internal/dictsrv"
	"repro/internal/harness"
	"repro/internal/workload"
)

// dictloadCmd drives a concurrent op load against the sharded dictionary
// service (internal/dictsrv) and reports throughput, per-op latency
// percentiles, the worst flush stall, and the amortized Q accounting —
// the serving-side view of the paper's write-buffering tradeoff, where
// the Θ(ωM) root-buffer deferral shows up as tail latency.
//
//	aem dictload -ops 2000000 -gor 8 -shards 4 -omega 16
//	aem dictload -scenario drift -engine arena -json
//	aem dictload -deamortize -json        (bounded-stall commit mode)
//
// Scenarios: uniform | zipf | sortedburst | deleteheavy | drift (default:
// drift — the migrating-hot-set shape that keeps invalidating buffered
// locality) | flashcrowd. Engines: any data-retaining engine (see `aem
// engines`). With -deamortize the committer pays flushes in bounded
// installments (debt queue + FlushStep) instead of run-to-completion
// cascades; compare two runs with `aem stallgate`.
func dictloadCmd(prog string, args []string) int {
	fs := flag.NewFlagSet(prog, flag.ExitOnError)
	var (
		nOps     = fs.Int("ops", 1_000_000, "total operations across all goroutines")
		gor      = fs.Int("gor", 8, "concurrent load goroutines")
		shards   = fs.Int("shards", 4, "keyspace partitions (one machine + tree each)")
		keyspace = fs.Int64("keyspace", 65536, "distinct-key domain size")
		machine  = machineFlags(fs, 1024, 32, 16)
		scenario = fs.String("scenario", "drift", "workload: uniform | zipf | sortedburst | deleteheavy | drift | flashcrowd")
		engine   = fs.String("engine", "slice", "storage engine: "+strings.Join(aem.EngineNames(), " | "))
		seed     = fs.Uint64("seed", 1, "workload seed")
		maxBatch = fs.Int("maxbatch", 0, "group-commit batch cap (0 = service default)")
		deam     = fs.Bool("deamortize", false, "bounded-stall commits: pay flushes in installments instead of cascades")
		jsonOut  = fs.Bool("json", false, "emit one JSON report instead of the human summary")
	)
	fs.Parse(args)

	cfg, err := machine()
	if err != nil {
		fail(prog, "%v", err)
		return 2
	}
	sc, found := workload.ScenarioByName(*scenario)
	if !found {
		fail(prog, "unknown scenario %q", *scenario)
		return 2
	}
	if *gor < 1 {
		fail(prog, "-gor must be ≥ 1, got %d", *gor)
		return 2
	}

	svc, err := dictsrv.New(dictsrv.Config{
		Shards:     *shards,
		Machine:    cfg,
		Engine:     *engine,
		KeyLo:      0,
		KeyHi:      *keyspace,
		MaxBatch:   *maxBatch,
		Deamortize: *deam,
	})
	if err != nil {
		fail(prog, "%v", err)
		return 2
	}
	defer svc.Close()

	streams := workload.DictStreams(*seed, sc, *gor, *nOps, *keyspace)
	rep := dictsrv.RunLoad(svc, streams)
	svc.Flush()
	st := svc.Stats()
	lat := harness.SummarizeLatencies(rep.LatencyNS)

	if *jsonOut {
		out := dictloadRecord{
			Type: "dictload", Scenario: sc.String(), Engine: *engine,
			Shards: *shards, Goroutines: rep.Goroutines, Deamortize: *deam,
			Ops: rep.Ops, WallNS: rep.WallNS, OpsPerSec: rep.OpsPerSec(),
			P50NS: lat.P50NS, P99NS: lat.P99NS, P999NS: lat.P999NS, MaxNS: lat.MaxNS,
			MaxStallNS: st.MaxStallNS, P999StallNS: st.Stalls.Quantile(0.999),
			MaxFlushNS: st.MaxFlushNS, DebtHighWater: st.DebtHighWater,
			Flushes: st.Flushes,
			Reads:   st.Reads, Writes: st.Writes, SnapReads: st.SnapReads,
			Cost: st.Cost, CostPerOp: float64(st.Cost) / float64(rep.Ops),
		}
		if err := json.NewEncoder(os.Stdout).Encode(&out); err != nil {
			fail(prog, "%v", err)
			return 1
		}
		return 0
	}

	mode := "amortized"
	if *deam {
		mode = "deamortized"
	}
	fmt.Printf("service      %d shard(s) of (M=%d, B=%d, ω=%d)-AEM on the %s engine, keyspace %d, %s commits\n",
		*shards, cfg.M, cfg.B, cfg.Omega, *engine, *keyspace, mode)
	fmt.Printf("load         %d ops from %d goroutine(s), %s workload (seed %d): %d updates / %d lookups (%d hits) / %d scans\n",
		rep.Ops, rep.Goroutines, sc, *seed, rep.Updates, rep.Lookups, rep.Hits, rep.Scans)
	fmt.Printf("throughput   %.0f ops/sec (%s wall)\n", rep.OpsPerSec(), harness.FmtNS(rep.WallNS))
	fmt.Printf("latency      p50 %s   p99 %s   p99.9 %s   max %s\n",
		harness.FmtNS(lat.P50NS), harness.FmtNS(lat.P99NS), harness.FmtNS(lat.P999NS), harness.FmtNS(lat.MaxNS))
	fmt.Printf("stalls       worst commit stall %s   p99.9 %s   debt high-water %d   (%d flush section(s), worst %s)\n",
		harness.FmtNS(st.MaxStallNS), harness.FmtNS(st.Stalls.Quantile(0.999)),
		st.DebtHighWater, st.Flushes, harness.FmtNS(st.MaxFlushNS))
	fmt.Printf("accounting   %d reads + %d snapshot reads + ω·%d writes = Q %d (%.2f per op)\n",
		st.Reads, st.SnapReads, st.Writes, st.Cost, float64(st.Cost)/float64(rep.Ops))
	return 0
}
