package workload

import (
	"fmt"

	"repro/internal/aem"
)

// KeyDist selects the key distribution of a generated sorting input.
type KeyDist int

const (
	// Random draws keys uniformly at random (worst case for sorting lower
	// bounds with high probability).
	Random KeyDist = iota
	// Sorted produces an already-sorted input (best case; exposes whether
	// an algorithm exploits presortedness — the AEM mergesort does not).
	Sorted
	// Reversed produces a strictly decreasing input.
	Reversed
	// FewDistinct draws keys from a domain of 16 values, exercising the
	// duplicate-handling paths of every comparator.
	FewDistinct
	// NearlySorted produces a sorted input with 5% of positions perturbed
	// by local swaps.
	NearlySorted
)

// String names the distribution for experiment tables.
func (d KeyDist) String() string {
	switch d {
	case Random:
		return "random"
	case Sorted:
		return "sorted"
	case Reversed:
		return "reversed"
	case FewDistinct:
		return "fewdistinct"
	case NearlySorted:
		return "nearlysorted"
	}
	return fmt.Sprintf("KeyDist(%d)", int(d))
}

// Dists lists every distribution, for table-driven tests and sweeps.
func Dists() []KeyDist {
	return []KeyDist{Random, Sorted, Reversed, FewDistinct, NearlySorted}
}

// Keys generates n sort keys from the distribution. Aux fields are set to
// the original index, which (a) makes every item distinct so total-order
// comparisons are unambiguous, and (b) lets tests verify stability-like
// properties and permutation correctness.
func Keys(r *RNG, dist KeyDist, n int) []aem.Item {
	items := make([]aem.Item, n)
	switch dist {
	case Random:
		for i := range items {
			items[i] = aem.Item{Key: r.Int63(), Aux: int64(i)}
		}
	case Sorted:
		for i := range items {
			items[i] = aem.Item{Key: int64(i), Aux: int64(i)}
		}
	case Reversed:
		for i := range items {
			items[i] = aem.Item{Key: int64(n - i), Aux: int64(i)}
		}
	case FewDistinct:
		for i := range items {
			items[i] = aem.Item{Key: int64(r.Intn(16)), Aux: int64(i)}
		}
	case NearlySorted:
		for i := range items {
			items[i] = aem.Item{Key: int64(i), Aux: int64(i)}
		}
		swaps := n / 20
		for s := 0; s < swaps; s++ {
			i := r.Intn(n)
			j := i + 1 + r.Intn(8)
			if j >= n {
				j = n - 1
			}
			items[i].Key, items[j].Key = items[j].Key, items[i].Key
		}
	default:
		panic(fmt.Sprintf("workload: unknown distribution %v", dist))
	}
	return items
}

// Permutation generates the permuting problem instance of Section 4 of the
// paper: n atoms in input order, where atom i must be moved to position
// p[i]. The returned items carry Key = destination position and Aux = i
// (the atom's identity), which is exactly the tagging used by sort-based
// permuting.
func Permutation(r *RNG, n int) (items []aem.Item, p []int) {
	p = r.Perm(n)
	items = make([]aem.Item, n)
	for i := range items {
		items[i] = aem.Item{Key: int64(p[i]), Aux: int64(i)}
	}
	return items, p
}

// Conformation is the structure of a sparse N×N matrix with exactly Delta
// non-zero entries per column (H = Delta·N non-zeros in total), as studied
// in Section 5 of the paper. Rows[c] lists the row indices of column c's
// non-zeros in increasing order, matching the paper's column-major layout
// in which each column's entries are stored by increasing row index.
type Conformation struct {
	N     int
	Delta int
	Rows  [][]int32
}

// H returns the total number of non-zero entries, H = δ·N.
func (c *Conformation) H() int { return c.N * c.Delta }

// NewConformation draws a random conformation: each column receives Delta
// distinct row indices chosen uniformly. It panics unless 1 ≤ delta ≤ n.
func NewConformation(r *RNG, n, delta int) *Conformation {
	if delta < 1 || delta > n {
		panic(fmt.Sprintf("workload: conformation needs 1 ≤ δ ≤ N, got δ=%d N=%d", delta, n))
	}
	c := &Conformation{N: n, Delta: delta, Rows: make([][]int32, n)}
	for col := 0; col < n; col++ {
		c.Rows[col] = sampleDistinct(r, n, delta)
	}
	return c
}

// BandedConformation returns a deterministic banded matrix: column c has
// non-zeros in rows c, c+1, …, c+δ−1 (mod N). Banded matrices are the
// friendly extreme for SpMxV — the direct algorithm touches blocks almost
// sequentially — and bound the other end of the cost range from random
// conformations.
func BandedConformation(n, delta int) *Conformation {
	if delta < 1 || delta > n {
		panic(fmt.Sprintf("workload: conformation needs 1 ≤ δ ≤ N, got δ=%d N=%d", delta, n))
	}
	c := &Conformation{N: n, Delta: delta, Rows: make([][]int32, n)}
	for col := 0; col < n; col++ {
		rows := make([]int32, delta)
		for k := 0; k < delta; k++ {
			rows[k] = int32((col + k) % n)
		}
		sortInt32(rows)
		c.Rows[col] = rows
	}
	return c
}

// sampleDistinct draws k distinct values from [0, n) and returns them
// sorted increasingly. It uses Floyd's algorithm, which needs only O(k)
// space.
func sampleDistinct(r *RNG, n, k int) []int32 {
	chosen := make(map[int32]struct{}, k)
	out := make([]int32, 0, k)
	for j := n - k; j < n; j++ {
		v := int32(r.Intn(j + 1))
		if _, dup := chosen[v]; dup {
			v = int32(j)
		}
		chosen[v] = struct{}{}
		out = append(out, v)
	}
	sortInt32(out)
	return out
}

// sortInt32 sorts in place; insertion sort suffices for the δ-sized slices
// used here but we guard against large inputs with a simple quicksort.
func sortInt32(a []int32) {
	if len(a) < 24 {
		for i := 1; i < len(a); i++ {
			for j := i; j > 0 && a[j] < a[j-1]; j-- {
				a[j], a[j-1] = a[j-1], a[j]
			}
		}
		return
	}
	pivot := a[len(a)/2]
	lo, hi := 0, len(a)-1
	for lo <= hi {
		for a[lo] < pivot {
			lo++
		}
		for a[hi] > pivot {
			hi--
		}
		if lo <= hi {
			a[lo], a[hi] = a[hi], a[lo]
			lo++
			hi--
		}
	}
	sortInt32(a[:hi+1])
	sortInt32(a[lo:])
}
