package cli

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/harness"
)

// benchCmd regenerates the repository's experiments: one table per
// theorem/lemma of the paper, run as declarative grid specs on a
// pluggable executor — the in-process point-granular worker pool by
// default, or one shard of a distributed run with -shard (see mergeCmd
// for reassembly). Tables are always emitted in index order, so the
// output is byte-identical at every parallelism level.
//
//	aem bench -list                 list experiment ids
//	aem bench                       run every experiment, tables to stdout
//	aem bench -exp EXP-D1,EXP-Q1    run a comma-separated selection
//	aem bench -par 8                run grid points on 8 workers
//	aem bench -csv out/             additionally write one CSV per experiment
//	aem bench -json                 JSON Lines to stdout, one record per row
//	aem bench -timing               append per-point wall-clock columns
//	aem bench -shard 0/2 -json      run shard 0 of 2, emit point records
func benchCmd(prog string, args []string) int {
	fs := flag.NewFlagSet(prog, flag.ExitOnError)
	var (
		expIDs  = fs.String("exp", "all", "comma-separated experiment ids to run, or 'all'")
		csvDir  = fs.String("csv", "", "directory to write per-experiment CSV files into")
		jsonOut = fs.Bool("json", false, "emit JSON Lines (one record per table row, measured and predicted columns included) instead of rendered tables")
		timing  = fs.Bool("timing", false, "append per-point wall-clock columns to tables/CSV and a wall_ns field to -json records (nondeterministic; off by default so recorded output stays stable)")
		shard   = fs.String("shard", "", "run only shard i of m (format i/m) and emit JSON Lines point records for `aem merge`; requires -json")
		list    = fs.Bool("list", false, "list experiments and exit")
		par     = fs.Int("par", runtime.NumCPU(), "number of grid points to run concurrently")
	)
	startProfiles := profileFlags(fs)
	fs.Parse(args)

	if *list {
		for _, s := range harness.All() {
			fmt.Printf("%-8s %s\n", s.ID, s.Index)
		}
		fmt.Println("auxiliary (not in 'all'; run with -exp):")
		for _, s := range harness.Aux() {
			fmt.Printf("%-8s %s\n", s.ID, s.Index)
		}
		return 0
	}

	specs, warnings, err := harness.Select(*expIDs)
	for _, w := range warnings {
		fail(prog, "warning: %s", w)
	}
	if err != nil {
		fail(prog, "%v", err)
		return 2
	}

	if *shard != "" {
		idx, cnt, err := parseShard(*shard)
		if err != nil {
			fail(prog, "%v", err)
			return 2
		}
		if !*jsonOut {
			fail(prog, "-shard emits JSON Lines point records; pass -json")
			return 2
		}
		if *csvDir != "" || *timing {
			fail(prog, "-csv and -timing apply at merge time, not to a shard run")
			return 2
		}
		ex := &harness.ShardExecutor{Index: idx, Count: cnt, Par: *par, W: os.Stdout}
		if err := ex.Execute(specs, nil); err != nil {
			fail(prog, "%v", err)
			return 1
		}
		return 0
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(prog, "%v", err)
			return 1
		}
	}

	stopProfiles, err := startProfiles()
	if err != nil {
		fail(prog, "%v", err)
		return 2
	}

	ex := &harness.LocalPool{Par: *par, Timing: *timing}
	var firstErr error
	ex.Execute(specs, func(tbl *harness.Table) {
		if *jsonOut {
			if err := tbl.JSON(os.Stdout); err != nil && firstErr == nil {
				firstErr = err
			}
		} else {
			tbl.Render(os.Stdout)
		}
		emitThroughput(tbl, *jsonOut, &firstErr)
		if *csvDir != "" && firstErr == nil {
			if err := writeCSVAtomic(*csvDir, tbl); err != nil {
				firstErr = err
			}
		}
	})
	if err := stopProfiles(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		fail(prog, "%v", firstErr)
		return 1
	}
	return 0
}

// emitThroughput appends a table's derived points/sec summary — one JSON
// record in -json mode, one text line otherwise. Untimed tables produce
// nothing, so output without -timing is byte-identical to previous
// releases and the recorded goldens.
func emitThroughput(tbl *harness.Table, jsonOut bool, firstErr *error) {
	tp := harness.ThroughputOf(tbl)
	if tp == nil {
		return
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(tp); err != nil && *firstErr == nil {
			*firstErr = err
		}
		return
	}
	fmt.Printf("  throughput: %d points in %.1f ms — %.1f points/sec (%.3f ms/point)\n\n",
		tp.Points, float64(tp.WallNS)/1e6, tp.PointsPerSec, tp.NSPerPoint/1e6)
}

// parseShard parses an i/m shard designator. Parsing is strict — exactly
// two integers and one slash, no trailing input — so a fat-fingered
// designator fails here rather than producing a shard of the wrong
// partition that only trips up `aem merge` later.
func parseShard(s string) (idx, cnt int, err error) {
	si, sm, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("invalid -shard %q: want i/m, e.g. 0/2", s)
	}
	idx, ierr := strconv.Atoi(si)
	cnt, merr := strconv.Atoi(sm)
	if ierr != nil || merr != nil {
		return 0, 0, fmt.Errorf("invalid -shard %q: want i/m, e.g. 0/2", s)
	}
	if cnt < 1 || idx < 0 || idx >= cnt {
		return 0, 0, fmt.Errorf("invalid -shard %q: need 0 ≤ i < m", s)
	}
	return idx, cnt, nil
}

// writeCSVAtomic writes the table's CSV into dir through a temp file
// renamed into place on success, so a failed or interrupted run never
// leaves a truncated CSV behind. The temp file is removed on every
// non-renamed exit — write error, close error, rename error, or a panic
// unwinding through — so failures never strand *.tmp files in the output
// directory either.
func writeCSVAtomic(dir string, tbl *harness.Table) (err error) {
	name := strings.ToLower(strings.ReplaceAll(tbl.ID, "EXP-", "exp_")) + ".csv"
	f, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	renamed := false
	defer func() {
		if !renamed {
			f.Close() // no-op if already closed
			os.Remove(tmp)
		}
	}()
	w := bufio.NewWriter(f)
	tbl.CSV(w)
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	renamed = true
	return nil
}
