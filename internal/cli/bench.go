package cli

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/harness"
)

// benchCmd regenerates the repository's experiments: one table per
// theorem/lemma of the paper, run as declarative grid specs on a shared
// point-granular worker pool (-par). Tables are always emitted in index
// order, so the output is byte-identical at every parallelism level.
//
//	aem bench -list                 list experiment ids
//	aem bench                       run every experiment, tables to stdout
//	aem bench -exp EXP-D1,EXP-Q1    run a comma-separated selection
//	aem bench -par 8                run grid points on 8 workers
//	aem bench -csv out/             additionally write one CSV per experiment
//	aem bench -json                 JSON Lines to stdout, one record per row
func benchCmd(prog string, args []string) int {
	fs := flag.NewFlagSet(prog, flag.ExitOnError)
	var (
		expIDs  = fs.String("exp", "all", "comma-separated experiment ids to run, or 'all'")
		csvDir  = fs.String("csv", "", "directory to write per-experiment CSV files into")
		jsonOut = fs.Bool("json", false, "emit JSON Lines (one record per table row, measured and predicted columns included) instead of rendered tables")
		list    = fs.Bool("list", false, "list experiments and exit")
		par     = fs.Int("par", runtime.NumCPU(), "number of grid points to run concurrently")
	)
	fs.Parse(args)

	if *list {
		for _, s := range harness.All() {
			fmt.Printf("%-8s %s\n", s.ID, s.Index)
		}
		return 0
	}

	specs, err := harness.Select(*expIDs)
	if err != nil {
		fail(prog, "%v", err)
		return 2
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(prog, "%v", err)
			return 1
		}
	}

	var firstErr error
	harness.Run(specs, *par, func(tbl *harness.Table) {
		if *jsonOut {
			if err := tbl.JSON(os.Stdout); err != nil && firstErr == nil {
				firstErr = err
			}
		} else {
			tbl.Render(os.Stdout)
		}
		if *csvDir != "" && firstErr == nil {
			if err := writeCSVAtomic(*csvDir, tbl); err != nil {
				firstErr = err
			}
		}
	})
	if firstErr != nil {
		fail(prog, "%v", firstErr)
		return 1
	}
	return 0
}

// writeCSVAtomic writes the table's CSV into dir through a temp file
// renamed into place on success, so a failed or interrupted run never
// leaves a truncated CSV behind.
func writeCSVAtomic(dir string, tbl *harness.Table) error {
	name := strings.ToLower(strings.ReplaceAll(tbl.ID, "EXP-", "exp_")) + ".csv"
	f, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	w := bufio.NewWriter(f)
	tbl.CSV(w)
	err = w.Flush()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(dir, name))
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
