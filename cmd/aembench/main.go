// Command aembench regenerates the repository's experiments: one table per
// theorem/lemma of "Lower Bounds in the Asymmetric External Memory Model"
// (Jacob & Sitchinava, SPAA 2017). See README.md ("Experiments") for the
// experiment index and how to read the tables.
//
// Independent experiments run on a bounded worker pool (-par); tables are
// always emitted in index order, so the output is byte-identical at every
// parallelism level.
//
// Usage:
//
//	aembench -list            list experiment ids
//	aembench                  run every experiment, tables to stdout
//	aembench -exp EXP-P1      run one experiment
//	aembench -par 8           run experiments on 8 workers
//	aembench -csv out/        additionally write one CSV per experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/harness"
)

func main() {
	var (
		expID  = flag.String("exp", "all", "experiment id to run, or 'all'")
		csvDir = flag.String("csv", "", "directory to write per-experiment CSV files into")
		list   = flag.Bool("list", false, "list experiments and exit")
		par    = flag.Int("par", runtime.NumCPU(), "number of experiments to run concurrently")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var exps []harness.Experiment
	if *expID == "all" {
		exps = harness.All()
	} else {
		e, ok := harness.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "aembench: unknown experiment %q (try -list)\n", *expID)
			os.Exit(2)
		}
		exps = []harness.Experiment{e}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "aembench: %v\n", err)
			os.Exit(1)
		}
	}

	harness.Run(exps, *par, func(tbl *harness.Table) {
		tbl.Render(os.Stdout)
		if *csvDir != "" {
			name := strings.ToLower(strings.ReplaceAll(tbl.ID, "EXP-", "exp_")) + ".csv"
			f, err := os.Create(filepath.Join(*csvDir, name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "aembench: %v\n", err)
				os.Exit(1)
			}
			tbl.CSV(f)
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "aembench: %v\n", err)
				os.Exit(1)
			}
		}
	})
}
