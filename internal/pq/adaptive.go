package pq

import (
	"fmt"

	"repro/internal/aem"
	"repro/internal/sorting"
)

// Adaptive is the ω-adaptive buffered priority queue: a min-priority
// queue of aem.Items whose external writes are batched through a Θ(ωM)
// insertion buffer, the priority-queue counterpart of the buffer tree
// dictionary's ω-adaptive root buffer.
//
// The paper's §1.1 cites the write-optimized heap of Blelloch et al. [7]
// as achieving O(ω·n·log_{ωm} n) unconditionally where the classic
// sequence heap (Queue) pays the symmetric Θ((1+ω)·n·log_m n). The gap is
// closed by three ω-adaptive choices, all trading expensive writes for
// cheap reads:
//
//   - Pushes stream into an external, unsorted insertion buffer in
//     block-granular frames: one ω-cost write per B insertions, and no
//     restructuring until Θ(ωM) items have accumulated — each structural
//     write is amortized over up to ω·M insertions instead of the
//     sequence heap's M/8.
//   - DeleteMin is phase-aware. The queue tracks (as §2 program
//     knowledge: scalars derived from data it has already seen) the
//     minimum unconsumed buffered item, and refills its deletion buffer
//     from the sorted run frontiers through the shared tournament tree
//     for as long as their heads stay at or below that minimum. Push
//     phases above the deletion frontier — sawtooth builds, monotone
//     event traffic — therefore cost nothing beyond the appends.
//   - When the minimum does live in the buffer, the queue rents before it
//     buys: a selection pass streams the buffer once (reads only, the
//     [7, Lemma 4.2] selection idea run incrementally) and lifts the capDB
//     smallest unconsumed items directly into the deletion buffer, with a
//     watermark marking them consumed in place — no write happens at all.
//     Only after ω such passes, when the cumulative read rent matches the
//     ω-weighted cost of sorting, is the buffer folded into a level-0 run
//     by the repository's own AEM sort. At ω = 1 the queue folds almost
//     immediately, like the classic heap; at large ω almost all deletions
//     are served by read-only selection and the measured writes/op falls
//     toward the 1/B append floor.
//
// Level-0 runs of up to ωM items mean levels merge with effective fan-out
// up to ωm, so an item that does get folded is rewritten O(log_{ωm} n)
// times rather than O(log_m n).
type Adaptive struct {
	runLevels

	stage     []aem.Item // in-memory staging frame for pushes, cap B
	deleteBuf []aem.Item // ascending; deleteBuf[0] is the global minimum
	capDB     int

	buf         bufChain // external unsorted insertion buffer
	bufCap      int      // fold threshold, ω·M items
	bufConsumed int      // buffered items consumed in place via the watermark

	// watermark/wmSkip mark the buffered items already consumed by
	// selection passes: everything below the watermark, plus the first
	// wmSkip copies equal to it (the SmallSort duplicate rule).
	watermark aem.Item
	wmSkip    int
	wmValid   bool

	// bufMin is the smallest unconsumed buffered item when known; refills
	// consume run frontiers freely below it without touching the buffer.
	bufMin      aem.Item
	bufMinValid bool

	// stash holds pushes that undercut the watermark (they would alias
	// the buffer's consumed region): an ascending in-memory side buffer
	// of ≤ capDB/2 items, merged into every refill and folded with the
	// buffer. Without it, one low push with an empty deletion buffer
	// would force a full fold. The half-capDB cap is what keeps every
	// reservation path within M at the M = 16B floor, where a fold's
	// SmallSort needs M/2 + 2B next to the queue's own buffers.
	stash    []aem.Item
	stashCap int

	scans int // selection passes since the last fold (the read rent)

	size  int
	folds int

	baseRes int // stage + scan frame + DB reservation, held for the lifetime
}

// bufChain is an append-only bag of items in external blocks, the pq
// counterpart of the dictionary's node buffer chains: blocks are written
// once, whole, and never rewritten in place.
type bufChain struct {
	addrs []aem.Addr
	n     int
}

// appendBlock writes items (≤ B of them) as one fresh block of the chain.
func (c *bufChain) appendBlock(ma *aem.Machine, items []aem.Item) {
	a := ma.Alloc(1)
	ma.Write(a, items)
	c.addrs = append(c.addrs, a)
	c.n += len(items)
}

// reset empties the chain. The old blocks are abandoned (external memory
// is unbounded in the model; addresses are never reused).
func (c *bufChain) reset() {
	c.addrs = c.addrs[:0]
	c.n = 0
}

// NewAdaptive creates an empty ω-adaptive queue on the machine, reserving
// ~3M/16 + B of internal memory for its buffers plus the shared run-frame
// budget; Close releases them. Requires M ≥ 16B, the same minimum as the
// sequence heap.
func NewAdaptive(ma *aem.Machine) *Adaptive {
	cfg := ma.Config()
	if cfg.M < 16*cfg.B {
		panic(fmt.Sprintf("pq: need M ≥ 16B, got M=%d B=%d", cfg.M, cfg.B))
	}
	q := &Adaptive{
		capDB:  cfg.M / 8,
		bufCap: cfg.Omega * cfg.M,
		stage:  make([]aem.Item, 0, cfg.B),
	}
	q.stashCap = q.capDB / 2
	q.baseRes = q.capDB + q.stashCap + cfg.B // deleteBuf + stash + stage
	ma.Reserve(q.baseRes)
	q.initLevels(ma)
	return q
}

// Close releases the queue's internal memory. The queue must be empty.
func (q *Adaptive) Close() {
	if q.size != 0 {
		panic(fmt.Sprintf("pq: Close with %d items still queued", q.size))
	}
	q.ma.Release(q.baseRes)
	q.closeLevels()
}

// Len returns the number of queued items.
func (q *Adaptive) Len() int { return q.size }

// BufCap returns the ω-adaptive insertion buffer capacity in items.
func (q *Adaptive) BufCap() int { return q.bufCap }

// Folds returns how many times the insertion buffer has been folded into
// a sorted run — the structural write events the ω-adaptive buffering
// defers and, at large ω, mostly avoids.
func (q *Adaptive) Folds() int { return q.folds }

// bufUnconsumed returns the number of live (not watermark-consumed) items
// in the insertion buffer, staged block included.
func (q *Adaptive) bufUnconsumed() int { return q.buf.n + len(q.stage) - q.bufConsumed }

// consumedByWatermark reports whether a stored buffer item is one of the
// already-consumed instances. seenAtMark must count the equal-to-mark
// copies seen so far in the same scan, the SmallSort duplicate rule.
func (q *Adaptive) consumedByWatermark(it aem.Item, seenAtMark *int) bool {
	if !q.wmValid || aem.Less(q.watermark, it) {
		return false
	}
	if aem.Less(it, q.watermark) {
		return true
	}
	*seenAtMark++
	return *seenAtMark <= q.wmSkip
}

// Push inserts an item.
func (q *Adaptive) Push(it aem.Item) {
	// An item below the deletion-buffer maximum must enter the deletion
	// buffer, or DeleteMin order would break; everything else is absorbed
	// by the insertion buffer.
	if len(q.deleteBuf) > 0 && aem.Less(it, q.deleteBuf[len(q.deleteBuf)-1]) {
		q.deleteBuf = insertSorted(q.deleteBuf, it)
		if len(q.deleteBuf) > q.capDB {
			last := q.deleteBuf[len(q.deleteBuf)-1]
			q.deleteBuf = q.deleteBuf[:len(q.deleteBuf)-1]
			q.stageItem(last)
		}
	} else {
		q.stageItem(it)
	}
	q.size++
}

// stageItem appends an item to the staging frame, spilling full frames to
// the external buffer chain: one ω-cost write per B insertions. An item
// strictly below the watermark would alias the consumed region, so it
// goes to the in-memory stash instead; only a full stash forces a fold.
// (An item equal to the watermark is safe in the buffer: the
// consumed-instance filter skips exactly wmSkip equal copies, whichever
// instances it meets.)
func (q *Adaptive) stageItem(it aem.Item) {
	if q.wmValid && aem.Less(it, q.watermark) {
		if len(q.stash) < q.stashCap {
			q.stash = insertSorted(q.stash, it)
			return
		}
		q.fold()
	}
	// A push can lower a known buffer minimum, or establish one for an
	// empty buffer — but an unknown minimum over live items stays unknown:
	// the buffer may hold something smaller than this push.
	if q.bufMinValid {
		if aem.Less(it, q.bufMin) {
			q.bufMin = it
		}
	} else if q.bufUnconsumed() == 0 {
		q.bufMin, q.bufMinValid = it, true
	}
	q.stage = append(q.stage, it)
	if len(q.stage) == cap(q.stage) {
		prev := q.ma.SetPhase("pq-append")
		q.buf.appendBlock(q.ma, q.stage)
		q.ma.SetPhase(prev)
		q.stage = q.stage[:0]
	}
	if q.bufUnconsumed() >= q.bufCap {
		q.fold()
	}
}

// fold converts the unconsumed insertion buffer into a sorted level-0
// run: the chain is materialized into a contiguous vector (dropping the
// watermark-consumed instances) and sorted with the AEM sort, whose ω
// selection/merge passes trade expensive writes for cheap reads.
// Compaction runs if the fold pushed the live-run count over budget.
func (q *Adaptive) fold() {
	live := q.bufUnconsumed() + len(q.stash)
	if live == 0 {
		q.resetBuf()
		return
	}
	prev := q.ma.SetPhase("pq-fold")
	var sorted *aem.Vector
	// The filter drops exactly bufConsumed stored instances. On real data
	// the watermark rule matches exactly those; the count cap makes the
	// fold robust on the data-free counting engine too, where every
	// stored item reads back as zeros and a value rule alone could drop
	// live instances.
	seenAtMark, dropped := 0, 0
	consumed := func(it aem.Item) bool {
		if dropped < q.bufConsumed && q.consumedByWatermark(it, &seenAtMark) {
			dropped++
			return true
		}
		return false
	}
	if q.buf.n == 0 {
		// Only staged and stashed items: filter and sort in memory (free)
		// and write the run directly — ⌈live/B⌉ writes, no sort passes.
		kept := make([]aem.Item, 0, len(q.stage)+len(q.stash))
		for _, it := range q.stage {
			if !consumed(it) {
				kept = append(kept, it)
			}
		}
		kept = append(kept, q.stash...)
		sortItems(kept)
		sorted = aem.NewVector(q.ma, len(kept))
		w := sorted.NewWriter()
		for _, it := range kept {
			w.Append(it)
		}
		w.Close()
	} else {
		if len(q.stage) > 0 {
			q.buf.appendBlock(q.ma, q.stage)
			q.stage = q.stage[:0]
		}
		// The sort needs the run frames' memory; drop them for the
		// duration, exactly as compaction does.
		q.dropFrames()
		v := aem.NewVector(q.ma, live)
		w := v.NewWriter()
		// The empty staging frame doubles as the scan frame — its B slots
		// are already part of baseRes.
		for _, a := range q.buf.addrs {
			blk := q.ma.ReadInto(a, q.stage[:0])
			for _, it := range blk {
				if !consumed(it) {
					w.Append(it)
				}
			}
		}
		for _, it := range q.stash {
			w.Append(it)
		}
		w.Close()
		sorted = sorting.MergeSort(q.ma, v)
		q.ma.Reserve(q.framesRes)
		q.framesIn = true
	}
	q.resetBuf()
	q.folds++
	q.addRun(0, &run{vec: sorted, frameLo: -1})
	q.ma.SetPhase(prev)
	if q.totalRuns() > q.maxRuns() {
		prevM := q.ma.SetPhase("pq-merge")
		q.compact()
		q.ma.SetPhase(prevM)
	}
}

// resetBuf clears the insertion buffer, the stash and the consumption
// bookkeeping.
func (q *Adaptive) resetBuf() {
	q.buf.reset()
	q.stage = q.stage[:0]
	q.stash = q.stash[:0]
	q.bufConsumed = 0
	q.wmValid = false
	q.bufMinValid = false
	q.scans = 0
}

// scanSelect streams the buffer once — one read per chain block, nothing
// written — and returns the up-to-capDB smallest unconsumed items in
// ascending order: one incremental selection pass of [7, Lemma 4.2]. The
// selection runs through a bounded max-heap (evict the root once capDB
// items are held, O(log capDB) per scanned item), so a scan's in-memory
// work is O(buffer · log capDB) — the same wall-clock discipline the
// tournament tree gives refills.
func (q *Adaptive) scanSelect() []aem.Item {
	var top aem.ItemHeap
	top.Max = true
	// Skip exactly bufConsumed stored instances: the watermark rule
	// matches exactly those on real data, and the count cap keeps the
	// selection exact on the data-free counting engine (see fold).
	seenAtMark, dropped := 0, 0
	add := func(it aem.Item) {
		if dropped < q.bufConsumed && q.consumedByWatermark(it, &seenAtMark) {
			dropped++
			return
		}
		if top.Len() == q.capDB {
			if !aem.Less(it, top.Peek()) {
				return
			}
			top.Pop()
		}
		top.Push(it)
	}
	// The staging frame may hold items, so the scan owns a second,
	// transiently metered frame.
	q.ma.Reserve(q.cfg.B)
	frame := make([]aem.Item, 0, q.cfg.B)
	for _, a := range q.buf.addrs {
		for _, it := range q.ma.ReadInto(a, frame) {
			add(it)
		}
	}
	for _, it := range q.stage {
		add(it)
	}
	q.ma.Release(q.cfg.B)
	s := make([]aem.Item, top.Len())
	for i := top.Len() - 1; i >= 0; i-- {
		s[i] = top.Pop()
	}
	return s
}

// Min returns the smallest item without removing it. Like DeleteMin it
// may trigger a refill — a buffer selection scan, or a fold whose
// ω-weighted writes are charged to the peek. Peeking is not free on a
// queue whose buffer holds the minimum.
func (q *Adaptive) Min() (aem.Item, bool) {
	if q.size == 0 {
		return aem.Item{}, false
	}
	q.ensureDeleteBuf()
	return q.deleteBuf[0], true
}

// DeleteMin removes and returns the smallest item.
func (q *Adaptive) DeleteMin() (aem.Item, bool) {
	if q.size == 0 {
		return aem.Item{}, false
	}
	q.ensureDeleteBuf()
	it := q.deleteBuf[0]
	q.deleteBuf = q.deleteBuf[1:]
	q.size--
	return it, true
}

// ensureDeleteBuf refills the deletion buffer with up to capDB of the
// globally smallest items — the phase-aware heart of the queue:
//
//  1. Run frontiers are consumed through the tournament tree for as long
//     as their heads stay at or below the buffer's minimum (freely, if
//     the buffer is empty). A refill may stop short of capDB items at
//     the buffer boundary; correctness needs only deleteBuf[0] to be the
//     global minimum.
//  2. If the buffer blocks the refill, a read-only selection scan lifts
//     buffered items into the refill, merged with the frontiers, and the
//     watermark marks them consumed in place.
//  3. Only after ω scans — when the read rent has matched a fold's
//     ω-weighted write bill — is the buffer folded into a real run.
func (q *Adaptive) ensureDeleteBuf() {
	if len(q.deleteBuf) > 0 {
		return
	}
	for {
		prev := q.ma.SetPhase("pq-refill")
		ft := newFrontierTree(q.liveRuns(), q.loadFrontier)
		var buf []aem.Item
		switch {
		case q.bufUnconsumed() == 0:
			buf, _ = q.mergeRefill(ft, nil, aem.Item{}, false)
		case q.bufMinValid:
			buf, _ = q.mergeRefill(ft, nil, q.bufMin, true)
		}
		if len(buf) > 0 || q.bufUnconsumed() == 0 {
			q.ma.SetPhase(prev)
			q.deleteBuf = buf
			if q.size > 0 && len(q.deleteBuf) == 0 {
				panic("pq: refill produced nothing despite non-empty queue")
			}
			return
		}
		if q.scans < q.cfg.Omega {
			// Rent: one selection pass over the buffer, merged with the
			// stash and the frontiers. The selection list is a second
			// capDB-sized buffer next to the (empty) deletion buffer;
			// meter it.
			q.ma.Reserve(q.capDB)
			s := q.scanSelect()
			q.scans++
			// A full selection caps what may be consumed this refill:
			// unconsumed buffered items beyond it are unknown but all
			// exceed its last element.
			limit, hasLimit := aem.Item{}, false
			if len(s) == q.capDB {
				limit, hasLimit = s[len(s)-1], true
			}
			var si int
			buf, si = q.mergeRefill(ft, s, limit, hasLimit)
			q.advanceWatermark(s, si)
			q.ma.Release(q.capDB)
			q.ma.SetPhase(prev)
			q.deleteBuf = buf
			if q.size > 0 && len(q.deleteBuf) == 0 {
				panic("pq: refill produced nothing despite non-empty queue")
			}
			return
		}
		// Buy: the read rent is spent; fold the buffer into a run and
		// refill from the frontiers on the next iteration.
		q.ma.SetPhase(prev)
		q.fold()
	}
}

// mergeRefill takes up to capDB smallest items from the selection s, the
// stash and the run frontiers, in that preference order on ties. Items
// above the limit (when set) stay where they are: the unsorted buffer may
// hold something smaller. Consumed s items are the returned prefix count;
// consumed stash and frontier items are removed at the source.
func (q *Adaptive) mergeRefill(ft *frontierTree, s []aem.Item, limit aem.Item, hasLimit bool) (buf []aem.Item, si int) {
	buf = make([]aem.Item, 0, q.capDB)
	for len(buf) < q.capDB {
		const (
			srcNone = iota
			srcSel
			srcStash
			srcFrontier
		)
		var best aem.Item
		src := srcNone
		if si < len(s) {
			best, src = s[si], srcSel
		}
		if len(q.stash) > 0 && (src == srcNone || aem.Less(q.stash[0], best)) {
			best, src = q.stash[0], srcStash
		}
		if r, ok := ft.min(); ok && (src == srcNone || aem.Less(r.head(), best)) {
			best, src = r.head(), srcFrontier
		}
		if src == srcNone {
			break
		}
		// Selection items are never above the limit (it is one of them).
		if src != srcSel && hasLimit && aem.Less(limit, best) {
			break
		}
		buf = append(buf, best)
		switch src {
		case srcSel:
			si++
		case srcStash:
			q.stash = q.stash[1:]
		case srcFrontier:
			ft.pop()
		}
	}
	return buf, si
}

// advanceWatermark records that the first si items of the selection s
// were consumed into the deletion buffer, and re-establishes the buffer
// minimum from the first unconsumed candidate.
func (q *Adaptive) advanceWatermark(s []aem.Item, si int) {
	if si > 0 {
		newWM := s[si-1]
		skip := 0
		for i := si - 1; i >= 0 && s[i] == newWM; i-- {
			skip++
		}
		if q.wmValid && newWM == q.watermark {
			skip += q.wmSkip
		}
		q.watermark, q.wmSkip, q.wmValid = newWM, skip, true
		q.bufConsumed += si
	}
	if si < len(s) {
		q.bufMin, q.bufMinValid = s[si], true
	} else {
		q.bufMinValid = false
	}
}

// AdaptiveHeapSort sorts v by pushing every item through an Adaptive
// queue — the ω-adaptive heapsort, cost O(ω·n·log_{ωm} n) like the §3
// mergesort, against HeapSort's symmetric Θ((1+ω)·n·log_m n).
func AdaptiveHeapSort(ma *aem.Machine, v *aem.Vector) *aem.Vector {
	q := NewAdaptive(ma)
	out := heapSortThrough(ma, v, q)
	q.Close()
	return out
}
