package workload

import (
	"testing"

	"repro/internal/dict"
)

func TestDictOpsDeterministicAndWellFormed(t *testing.T) {
	for _, sc := range Scenarios() {
		a := DictOps(NewRNG(7), sc, 5000, 1024)
		b := DictOps(NewRNG(7), sc, 5000, 1024)
		if len(a) != 5000 {
			t.Fatalf("%v: generated %d ops, want 5000", sc, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: stream not deterministic at op %d", sc, i)
			}
			op := a[i]
			if op.Key < 0 || op.Key >= 1024 {
				t.Fatalf("%v: op %d key %d outside keyspace", sc, i, op.Key)
			}
			if op.Kind == dict.Insert && (op.Value < 0 || op.Value > dict.MaxValue) {
				t.Fatalf("%v: op %d value %d unstorable", sc, i, op.Value)
			}
			if op.Kind == dict.RangeScan && op.Hi <= op.Key {
				t.Fatalf("%v: op %d empty range [%d,%d)", sc, i, op.Key, op.Hi)
			}
		}
	}
}

func TestDictOpsMixes(t *testing.T) {
	const n = 20000
	for _, sc := range Scenarios() {
		ins, del, look, rng := OpMix(DictOps(NewRNG(3), sc, n, 4096))
		if ins+del+look+rng != n {
			t.Fatalf("%v: mix does not sum to n", sc)
		}
		if ins == 0 || look == 0 {
			t.Errorf("%v: degenerate mix ins=%d del=%d look=%d range=%d", sc, ins, del, look, rng)
		}
		if sc == DeleteHeavyOps && del < ins/2 {
			t.Errorf("delete-heavy mix has too few deletes: ins=%d del=%d", ins, del)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := newZipf(1024, 1.1)
	r := NewRNG(11)
	counts := make([]int, 1024)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.sample(r)]++
	}
	// Rank 0 must dominate: with s=1.1 over 1024 keys its mass is ~13%.
	if counts[0] < draws/20 {
		t.Errorf("zipf rank 0 drew %d of %d, expected a heavy head", counts[0], draws)
	}
	if counts[0] <= counts[512] {
		t.Errorf("zipf head %d not heavier than tail %d", counts[0], counts[512])
	}
}
